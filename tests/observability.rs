//! Observability-layer integration tests: the trace must be a lossless
//! account of where simulated time went, and turning it on must not perturb
//! the simulation.
//!
//! * trace-on runs are bit-identical to trace-off runs (branch-only gating);
//! * each committed transaction's phase spans partition its lifetime
//!   exactly (integer nanoseconds, no gaps, no overlaps);
//! * `PhaseBreakdown` counts/means/percentiles match a reference
//!   computation over the per-transaction latencies reconstructed from the
//!   event trace;
//! * the Chrome-trace and JSONL exports are structurally valid.

use ddbm::config::{Algorithm, Config};
use ddbm::core::{run_config, run_traced, PhaseBucket, RunReport, TraceLog};

/// The determinism suite's small 2PL configuration: locks, blocking, and
/// the Snoop deadlock detector on a 4-node machine.
fn small_config() -> Config {
    let mut c = Config::paper(Algorithm::TwoPhaseLocking, 4, 4, 1.0);
    c.workload.num_terminals = 16;
    c.workload.mean_pages_per_file = 2;
    c.workload.min_pages_per_file = 1;
    c.workload.max_pages_per_file = 3;
    c.database.pages_per_file = 100;
    c.control.warmup_commits = 10;
    c.control.measure_commits = 40;
    c
}

fn traced_small() -> (RunReport, TraceLog) {
    run_traced(small_config()).expect("valid config")
}

/// Tracing must be observation only: phase stats and the event recorder
/// draw no randomness and schedule no events, so the report is bit-equal
/// to an untraced run of the same seed.
#[test]
fn tracing_does_not_perturb_results() {
    let plain = run_config(small_config()).expect("valid config");
    let (traced, _) = traced_small();
    assert_eq!(plain.commits, traced.commits);
    assert_eq!(plain.aborts, traced.aborts);
    assert_eq!(
        plain.throughput.to_bits(),
        traced.throughput.to_bits(),
        "throughput must be bit-identical with tracing on"
    );
    assert_eq!(
        plain.mean_response_time.to_bits(),
        traced.mean_response_time.to_bits(),
        "mean response time must be bit-identical with tracing on"
    );
    assert!(plain.phase_breakdown.is_none());
    assert!(traced.phase_breakdown.is_some());
}

/// Every committed transaction's spans must tile `[submitted, committed]`
/// exactly: consecutive, non-overlapping, summing to the end-to-end
/// latency in integer nanoseconds.
#[test]
fn spans_partition_each_transaction_lifetime() {
    let (report, trace) = traced_small();
    assert_eq!(trace.dropped, 0, "ring must not wrap on this small run");
    let txns = trace.txn_traces();
    let committed: Vec<_> = txns.iter().filter(|t| t.committed.is_some()).collect();
    assert!(
        committed.len() as u64 >= report.commits,
        "trace must cover at least the measured commits"
    );
    for t in &committed {
        let end = t.committed.expect("filtered on committed");
        let mut cursor = t.submitted;
        for span in &t.spans {
            assert_eq!(
                span.start, cursor,
                "txn {:?}: spans must be consecutive",
                t.txn
            );
            assert!(span.end >= span.start);
            cursor = span.end;
        }
        assert_eq!(
            cursor, end,
            "txn {:?}: spans must end at the commit instant",
            t.txn
        );
        let total: u64 = t.spans.iter().map(|s| s.end.0 - s.start.0).sum();
        assert_eq!(
            total,
            end.0 - t.submitted.0,
            "txn {:?}: span durations must sum to the end-to-end latency",
            t.txn
        );
    }
}

/// Ceiling-rank percentile over exact values — the reference the
/// histogram-derived numbers are checked against.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// The log-bucketed histograms use 5 sub-bucket bits, so a representative
/// value is within 1/64 of the exact order statistic.
fn assert_close(got_s: f64, exact_ns: u64, what: &str) {
    let exact_s = exact_ns as f64 * 1e-9;
    let tol = exact_s / 64.0 + 1e-12;
    assert!(
        (got_s - exact_s).abs() <= tol,
        "{what}: histogram {got_s} vs exact {exact_s} (tol {tol})"
    );
}

/// `PhaseBreakdown` must agree with a reference computation over the
/// per-transaction values reconstructed independently from the event
/// trace: exact counts and means, percentiles within the histogram's
/// guaranteed error bound.
#[test]
fn phase_breakdown_matches_trace_reference() {
    let (report, trace) = traced_small();
    let breakdown = report.phase_breakdown.as_ref().expect("tracing enabled");

    // Measured transactions are the post-warmup commits, in commit order.
    let mut committed: Vec<_> = trace
        .txn_traces()
        .into_iter()
        .filter(|t| t.committed.is_some())
        .collect();
    committed.sort_by_key(|t| t.committed.expect("filtered"));
    let warmup = small_config().control.warmup_commits as usize;
    let measured: Vec<_> = committed
        .into_iter()
        .skip(warmup)
        .take(report.commits as usize)
        .collect();
    assert_eq!(measured.len() as u64, report.commits);
    assert_eq!(breakdown.response.count, report.commits);

    // End-to-end latency: exact count, exact mean, bounded percentiles.
    let mut latencies: Vec<u64> = measured
        .iter()
        .map(|t| t.committed.expect("filtered").0 - t.submitted.0)
        .collect();
    latencies.sort_unstable();
    let mean_s = latencies.iter().sum::<u64>() as f64 * 1e-9 / latencies.len() as f64;
    assert!(
        (breakdown.response.mean_s - mean_s).abs() <= mean_s * 1e-12,
        "mean is tracked exactly, not through the histogram"
    );
    assert_close(
        breakdown.response.p50_s,
        exact_quantile(&latencies, 0.50),
        "response p50",
    );
    assert_close(
        breakdown.response.p95_s,
        exact_quantile(&latencies, 0.95),
        "response p95",
    );
    assert_close(
        breakdown.response.p99_s,
        exact_quantile(&latencies, 0.99),
        "response p99",
    );

    // Per-phase times, reconstructed per transaction from the spans, must
    // reproduce each phase's stats.
    for (bucket, (label, stats)) in PhaseBucket::ALL.iter().zip(breakdown.phases()) {
        let mut per_txn: Vec<u64> = measured
            .iter()
            .map(|t| {
                t.spans
                    .iter()
                    .filter(|s| s.bucket == *bucket)
                    .map(|s| s.end.0 - s.start.0)
                    .sum()
            })
            .collect();
        per_txn.sort_unstable();
        assert_eq!(
            stats.count, report.commits,
            "{label}: one sample per commit"
        );
        let total_s = per_txn.iter().sum::<u64>() as f64 * 1e-9;
        assert!(
            (stats.total_s - total_s).abs() <= total_s * 1e-12 + 1e-15,
            "{label}: total from spans {total_s} vs breakdown {}",
            stats.total_s
        );
        assert_close(stats.p50_s, exact_quantile(&per_txn, 0.50), label);
        assert_close(stats.p95_s, exact_quantile(&per_txn, 0.95), label);
    }

    // The phase means must sum to the response mean: the six buckets
    // partition each lifetime.
    let phase_mean_sum: f64 = breakdown.phases().iter().map(|(_, s)| s.mean_s).sum();
    assert!(
        (phase_mean_sum - breakdown.response.mean_s).abs() <= breakdown.response.mean_s * 1e-9,
        "phase means {phase_mean_sum} must sum to response mean {}",
        breakdown.response.mean_s
    );
}

/// The exporters must emit structurally valid output: balanced JSON for the
/// Chrome trace, one object per line for the JSONL stream.
#[test]
fn exports_are_structurally_valid() {
    let (_, trace) = traced_small();
    let mut chrome = Vec::new();
    trace
        .write_chrome_trace(&mut chrome)
        .expect("in-memory write");
    let chrome = String::from_utf8(chrome).expect("utf8");
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with('}'));
    let balance = |s: &str, open: char, close: char| {
        s.chars().filter(|c| *c == open).count() as i64
            - s.chars().filter(|c| *c == close).count() as i64
    };
    assert_eq!(balance(&chrome, '{', '}'), 0, "chrome JSON braces balance");
    assert_eq!(
        balance(&chrome, '[', ']'),
        0,
        "chrome JSON brackets balance"
    );

    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).expect("in-memory write");
    let jsonl = String::from_utf8(jsonl).expect("utf8");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.events.len());
    for line in lines {
        assert!(line.starts_with("{\"t\":"), "each line is one event object");
        assert!(line.ends_with('}'));
        assert_eq!(balance(line, '{', '}'), 0);
    }
}
