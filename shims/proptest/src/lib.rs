//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest this workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`, [`Just`], weighted
//! [`prop_oneof!`], `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, [`any`]), the [`proptest!`] macro, and
//! [`ProptestConfig`] case counts.
//!
//! Differences from the real crate, chosen deliberately:
//! - **no shrinking** — a failing case prints its input and panics as-is;
//! - **fixed seeding** — cases derive from a per-test seed, so runs are
//!   fully reproducible (`.proptest-regressions` files are ignored);
//! - plain uniform sampling, without proptest's edge-case biasing.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic split-mix PRNG driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.) — tiny, uniform, and plenty for tests.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-strategy fidelity.
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!` backing type).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Uniform on the closed interval; hitting the exact endpoint is
        // measure-zero anyway, so reuse the half-open sampler.
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_tuple_strategy!(S1 / v1);
impl_tuple_strategy!(S1 / v1, S2 / v2);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);
impl_tuple_strategy!(
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6,
    S7 / v7
);
impl_tuple_strategy!(
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6,
    S7 / v7,
    S8 / v8
);
impl_tuple_strategy!(
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6,
    S7 / v7,
    S8 / v8,
    S9 / v9
);
impl_tuple_strategy!(
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6,
    S7 / v7,
    S8 / v8,
    S9 / v9,
    S10 / v10
);

/// Types with a canonical "anything" strategy, for [`any`].
pub trait Arbitrary: Sized {
    type Strat: Strategy<Value = Self>;
    fn any_strategy() -> Self::Strat;
}

/// The full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strat {
    T::any_strategy()
}

pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strat = FullRange<$t>;
            fn any_strategy() -> Self::Strat {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strat = crate::bool::BoolStrategy;
    fn any_strategy() -> Self::Strat {
        crate::bool::ANY
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolStrategy = BoolStrategy;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: samples `config.cases` inputs and runs the body on
/// each, printing the offending input before propagating any panic.
pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: FnMut(S::Value),
{
    // Stable per-test seed: runs are reproducible across invocations.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = TestRng::new(h);
    for case in 0..config.cases {
        let input = strategy.sample(&mut rng);
        let shown = format!("{input:#?}");
        match catch_unwind(AssertUnwindSafe(|| body(input))) {
            Ok(()) => {}
            Err(panic) => {
                eprintln!(
                    "proptest shim: `{test_name}` failed at case {case}/{} with input:\n{shown}",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $(($w as u32, $crate::Strategy::boxed($s))),+ ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $((1u32, $crate::Strategy::boxed($s))),+ ])
    };
}

/// The `proptest!` block macro: each `fn name(arg in strategy, …) { body }`
/// becomes a plain `#[test]` (the attribute is written by the caller, as
/// with the real crate) that samples and runs `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ( $($strat,)+ );
            $crate::run_cases(stringify!($name), &config, &strategy, |($($arg,)+)| $body);
        }
    )*};
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(3u64..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = crate::Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&y));
            let f = crate::Strategy::sample(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = prop::collection::vec((0u64..100, any::<bool>()), 1..20);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let strat = prop_oneof![
            3 => Just(1u32),
            1 => 10u32..12,
        ];
        let mut rng = crate::TestRng::new(1);
        let mut saw_one = false;
        let mut saw_range = false;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                1 => saw_one = true,
                10 | 11 => saw_range = true,
                other => panic!("impossible sample {other}"),
            }
        }
        assert!(saw_one && saw_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(xs in prop::collection::vec(0u64..50, 1..10), flip in prop::bool::ANY) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(flip, flip);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        crate::run_cases(
            "failing_property_panics",
            &ProptestConfig::with_cases(50),
            &((0u64..10),),
            |(x,)| assert!(x < 5),
        );
    }
}
