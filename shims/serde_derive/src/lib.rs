//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so the real `serde` stack is
//! replaced by in-tree shims (see `crates/shims/serde`). This proc-macro
//! implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for exactly
//! the shapes this workspace uses:
//!
//! - structs with named fields (honoring `#[serde(default)]`),
//! - single-field tuple ("newtype") structs,
//! - fieldless enums (unit variants serialize as their name).
//!
//! Anything else (generics, data-carrying enum variants, renames) is a
//! compile error with a pointed message rather than silent misbehavior.
//! Parsing is done directly over `proc_macro::TokenStream` — no `syn`/`quote`
//! — and the generated impl is assembled as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// One named field: `(name, has_serde_default)`.
type Field = (String, bool);

enum Shape {
    Named { name: String, fields: Vec<Field> },
    Newtype { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Named { name, fields } => {
            let mut pushes = String::new();
            for (f, _) in fields {
                let _ = writeln!(
                    pushes,
                    "fields.push((::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})));"
                );
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({n});\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n}}\n}}\n",
                n = fields.len(),
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
        ),
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let _ = writeln!(
                    arms,
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                );
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}\n"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for (f, has_default) in fields {
                if *has_default {
                    let _ = writeln!(
                        inits,
                        "{f}: match ::serde::find_field(obj, {f:?}) {{\n\
                         Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                         None => ::std::default::Default::default(),\n}},"
                    );
                } else {
                    let _ = writeln!(
                        inits,
                        "{f}: match ::serde::find_field(obj, {f:?}) {{\n\
                         Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                         None => ::serde::absent_field({name:?}, {f:?})?,\n}},"
                    );
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"struct {name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}\n"
        ),
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let _ = writeln!(arms, "{v:?} => ::std::result::Result::Ok({name}::{v}),");
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v.as_str() {{\n\
                 Some(s) => match s {{\n{arms}\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", v)),\n}},\n\
                 None => ::std::result::Result::Err(::serde::DeError::expected(\"string variant of {name}\", v)),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Shape::Named {
                fields: parse_named_fields(&name, g.stream()),
                name,
            },
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_items(g.stream());
                if n != 1 {
                    panic!(
                        "serde_derive shim: tuple struct `{name}` has {n} fields; \
                         only single-field newtypes are supported"
                    );
                }
                Shape::Newtype { name }
            }
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other}"),
        },
        "enum" => match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Shape::UnitEnum {
                variants: parse_unit_variants(&name, g.stream()),
                name,
            },
            other => panic!("serde_derive shim: unsupported enum body for `{name}`: {other}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Skip outer attributes (`#[...]`), including doc comments.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // `#` + bracket group
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`, etc.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// `true` if this attr group is exactly a `#[serde(...)]` list containing
/// the word `default`. Any other serde attribute is rejected loudly.
fn serde_attr_is_default(type_name: &str, g: &proc_macro::Group) -> Option<bool> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None, // not a serde attr (e.g. doc, derive on nested item)
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        panic!("serde_derive shim: malformed #[serde] attribute on `{type_name}`");
    };
    let words: Vec<String> = args
        .stream()
        .into_iter()
        .filter_map(|t| match t {
            TokenTree::Ident(id) => Some(id.to_string()),
            _ => None,
        })
        .collect();
    if words == ["default"] {
        Some(true)
    } else {
        panic!(
            "serde_derive shim: unsupported serde attribute #[serde({words:?})] on `{type_name}` \
             (only #[serde(default)] is implemented)"
        );
    }
}

fn parse_named_fields(type_name: &str, body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Attributes (doc comments, #[serde(default)]).
        let mut has_default = false;
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                if serde_attr_is_default(type_name, g) == Some(true) {
                    has_default = true;
                }
            }
            i += 2;
        }
        skip_vis(&toks, &mut i);
        let fname = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                panic!("serde_derive shim: expected field name in `{type_name}`, got {other}")
            }
        };
        i += 1;
        assert!(
            matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive shim: expected `:` after field `{fname}` in `{type_name}`"
        );
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or off the end)
        fields.push((fname, has_default));
    }
    fields
}

fn parse_unit_variants(type_name: &str, body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let v = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                panic!("serde_derive shim: expected variant name in `{type_name}`, got {other}")
            }
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => panic!(
                "serde_derive shim: enum `{type_name}` variant `{v}` carries data ({other}); \
                 only fieldless enums are supported"
            ),
        }
        variants.push(v);
    }
    variants
}

fn count_top_level_items(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle: i32 = 0;
    let len = toks.len();
    for (idx, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma does not start a new item.
                ',' if angle == 0 && idx + 1 < len => n += 1,
                _ => {}
            }
        }
    }
    n
}
