//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this workspace ships a
//! minimal serde replacement. Instead of the real serde's visitor-based
//! zero-copy model, everything funnels through an owned [`Value`] tree —
//! more allocation-happy, but configs and reports are tiny and only touched
//! at experiment boundaries, never on the simulation hot path.
//!
//! Semantics intentionally mirror the real `serde`/`serde_json` pair where
//! the workspace depends on them:
//! - non-finite floats serialize to [`Value::Null`] (like serde_json) and
//!   `Null` does **not** deserialize back into `f64`;
//! - missing fields error unless the field is `#[serde(default)]` or an
//!   `Option` (which becomes `None`);
//! - unit enum variants are strings named after the variant.

// Let the `::serde::` paths emitted by the derive macros resolve inside
// this crate's own tests (same trick the real serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the serialization data model.
///
/// Object fields keep insertion order (like serde_json's `preserve_order`),
/// which keeps serialized output stable and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for this workspace's ids/counts).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Finite floats only; non-finite values become `Null` at serialize time.
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived impls when a field is missing from the input map.
    /// Overridden by `Option<T>` to yield `None`, matching real serde.
    fn absent() -> Result<Self, DeError> {
        Err(DeError("missing field".into()))
    }
}

/// Derive-support: locate a field in an object by name.
pub fn find_field<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Derive-support: produce the value for a missing field (errors unless the
/// target type, like `Option`, tolerates absence).
pub fn absent_field<T: Deserialize>(type_name: &str, field: &str) -> Result<T, DeError> {
    T::absent().map_err(|_| DeError(format!("missing field `{field}` in {type_name}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // serde_json serializes NaN/inf as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// `Value` round-trips through itself, so callers can deserialize JSON of
// unknown or partially known shape (like the real crate's
// `serde_json::Value`) and walk the tree by hand.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn nan_serializes_to_null_and_rejects_f64() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn option_handles_null_and_absence() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::absent().unwrap(), None);
        assert!(u64::absent().is_err());
    }

    #[test]
    fn ints_range_check() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        a: u64,
        #[serde(default)]
        b: f64,
        c: Option<u32>,
        tag: Tag,
        wrap: Wrap,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrap(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Tag {
        Red,
        Blue,
    }

    #[test]
    fn derive_round_trip() {
        let d = Demo {
            a: 9,
            b: 2.25,
            c: Some(3),
            tag: Tag::Blue,
            wrap: Wrap(11),
        };
        let v = d.to_value();
        assert_eq!(Demo::from_value(&v).unwrap(), d);
    }

    #[test]
    fn derive_default_and_option_absence() {
        // Drop `b` (defaulted) and `c` (Option) from the object.
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("tag".into(), Value::Str("Red".into())),
            ("wrap".into(), Value::UInt(5)),
        ]);
        let d = Demo::from_value(&v).unwrap();
        assert_eq!(d.b, 0.0);
        assert_eq!(d.c, None);
        // Dropping a required field errors.
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let err = Demo::from_value(&v).unwrap_err();
        assert!(err.0.contains("missing field"), "{err}");
    }
}
