//! Offline stand-in for `serde_json` over the shim `serde` [`Value`] tree.
//!
//! Implements exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`] (2-space indent, like the real crate) and
//! [`from_str`]. Matches real serde_json where tests depend on it:
//! non-finite floats serialize as `null` (and `null` will not deserialize
//! into `f64`), object key order is preserved, and numbers round-trip.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                seq_sep(out, indent, depth + 1, i == 0);
                write_value(out, item, indent, depth + 1);
            }
        }),
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
                for (i, (k, fv)) in fields.iter().enumerate() {
                    seq_sep(out, indent, depth + 1, i == 0);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, fv, indent, depth + 1);
                }
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn seq_sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

/// Rust's shortest-round-trip float `Display` matches serde_json's behavior
/// closely, except integral floats print without a decimal point; add `.0`
/// so floats stay visually distinct (they still parse back as numbers).
fn write_float(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "non-finite floats become Value::Null");
    // `{x}` (Display) never uses an exponent, so extreme magnitudes would
    // expand to hundreds of digits; switch to `{x:e}` there, like the real
    // serde_json's ryu output. Both forms are shortest-round-trip.
    let a = x.abs();
    if a != 0.0 && !(1e-6..1e21).contains(&a) {
        out.push_str(&format!("{x:e}"));
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writing() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, r#"{"a":1,"b":[true,null],"c":1.5}"#);
    }

    #[test]
    fn pretty_writing_indents() {
        let v = Value::Object(vec![("xs".into(), Value::Array(vec![Value::UInt(1)]))]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut out = String::new();
        write_float(&mut out, 10.0);
        assert_eq!(out, "10.0");
        let mut out = String::new();
        write_float(&mut out, 1e300);
        assert!(out.contains('e'));
    }

    #[test]
    fn parse_round_trips() {
        let cases = [
            r#"{"a":1,"b":[true,null],"c":1.5}"#,
            r#"[]"#,
            r#"{}"#,
            r#"-42"#,
            r#""esc \" \\ \n A 😀""#,
            r#"[1e3,0.25,-0.5]"#,
        ];
        for case in cases {
            let v = parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            let v2 = parse(&out).unwrap();
            assert_eq!(v, v2, "{case}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for case in ["{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(parse(case).is_err(), "{case}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}ctl\u{1F600}emoji";
        let mut out = String::new();
        write_string(&mut out, s);
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Value::Str(s.to_string()));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v, Value::UInt(big));
    }
}
