//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate provides the
//! criterion API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) backed by a simple wall-clock
//! harness:
//!
//! - each bench runs a short warmup, then `sample_size` samples of enough
//!   iterations to make a sample meaningful, and reports the **median**
//!   sample in ns/iter (the median is robust to scheduler noise);
//! - positional CLI args act as substring filters, like criterion's;
//!   `--bench`/`--test` and other harness flags are accepted and ignored;
//! - setting `CRITERION_JSON=<path>` appends one JSON line per bench:
//!   `{"name": …, "ns_per_iter": …, "samples": …, "iters_per_sample": …}` —
//!   this is how `scripts/bench_snapshot.sh` builds `BENCH_core.json`.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each bench (after warmup).
const TARGET_MEASURE: Duration = Duration::from_secs(3);
/// Minimum time one sample should take, so `Instant` overhead vanishes.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

pub struct Criterion {
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Cargo's harness handshake and criterion flags we ignore.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" | "--noplot" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                filter => filters.push(filter.to_string()),
            }
        }
        Criterion {
            filters,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_sample_size, &self.filters, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        let n = self.sample_size.unwrap_or(self.parent.default_sample_size);
        run_bench(&full, n, &self.parent.filters, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    /// Iterations to run per sample (set by the harness).
    iters: u64,
    /// Measured duration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, filters: &[String], mut f: F) {
    if !filters.is_empty() && !filters.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warmup & calibration: run single iterations until one sample's cost is
    // known, then size samples to at least MIN_SAMPLE each.
    f(&mut b);
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (MIN_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;
    // Cap total measurement time: shrink the sample count (not below 5) if
    // one sample is already expensive (e.g. whole-simulation benches).
    let sample_cost = per_iter * iters_per_sample as u32;
    let affordable = (TARGET_MEASURE.as_nanos() / sample_cost.as_nanos().max(1)).max(5) as usize;
    let samples = sample_size.min(affordable).max(5);

    b.iters = iters_per_sample;
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    println!(
        "bench {name:<60} {median:>14.1} ns/iter ({samples} samples x {iters_per_sample} iters)"
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":{:?},\"ns_per_iter\":{median:.1},\"samples\":{samples},\"iters_per_sample\":{iters_per_sample}}}",
                name
            );
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter("2PL").0, "2PL");
    }

    #[test]
    fn harness_measures_something_sane() {
        // A ~1µs busy loop should measure within an order of magnitude.
        let mut c = Criterion {
            filters: vec![],
            default_sample_size: 10,
        };
        c.bench_function("selftest/spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..200u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }

    #[test]
    fn filters_skip_mismatches() {
        let mut ran = false;
        run_bench("group/name", 5, &["other".to_string()], |_b| ran = true);
        assert!(!ran);
        run_bench("group/name", 5, &["nam".to_string()], |b| {
            ran = true;
            b.iter(|| 1u64)
        });
        assert!(ran);
    }
}
