//! # ddbm — Parallelism and Concurrency Control in Distributed Database Machines
//!
//! A from-scratch Rust reproduction of Carey & Livny, *"Parallelism and
//! Concurrency Control Performance in Distributed Database Machines"*,
//! Proc. ACM SIGMOD 1989 (UW–Madison CS TR #831).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`config`] — model parameters (the paper's Tables 1–4) and presets.
//! * [`sim`] — the `denet` discrete-event engine (calendar, RNG, statistics).
//! * [`resource`] — node CPU (processor sharing + priority messages) and disks.
//! * [`cc`] — the concurrency control algorithms: 2PL, WW, BTO, OPT, NO_DC.
//! * [`core`] — the simulator: workload source, transaction manager, 2PC.
//! * [`experiments`] — builders regenerating every figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use ddbm::config::{Algorithm, Config};
//! use ddbm::core::run_config;
//!
//! let mut config = Config::paper(Algorithm::TwoPhaseLocking, 8, 8, 12.0);
//! config.control.warmup_commits = 20;   // short demo run
//! config.control.measure_commits = 100;
//! let report = run_config(config).unwrap();
//! println!("throughput: {:.2} txn/s", report.throughput);
//! assert!(report.commits >= 100);
//! ```

pub use ddbm_cc as cc;
pub use ddbm_config as config;
pub use ddbm_core as core;
pub use ddbm_experiments as experiments;
pub use ddbm_resource as resource;
pub use denet as sim;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
