#!/usr/bin/env bash
# Trace-overhead smoke check.
#
# Runs the whole-simulation bench groups with tracing off and on N times,
# takes the per-bench minimum (the noise-robust estimator), and then:
#   1. asserts the trace-OFF runs have not regressed more than
#      TRACE_OVERHEAD_TOL (default 2%) plus the machine's demonstrated
#      same-run noise floor against the committed "after" baseline in
#      BENCH_core.json — the disabled observability path must stay
#      branch-only;
#   2. reports the trace-ON overhead relative to the same-machine
#      trace-OFF numbers (informational).
#
# Machine-speed drift between the baseline machine and this one is
# normalized out with the median trace-off ratio, so the check catches a
# regression localized to any simulator path (what a leaky trace gate
# would cause). A perfectly *uniform* slowdown is indistinguishable from
# machine drift by construction; verifying that requires a same-machine
# A/B of the two trees (interleave the old and new bench binaries and
# compare minima).
#
# Usage:
#   scripts/trace_overhead.sh
#
# Environment:
#   TRACE_OVERHEAD_RUNS  bench repetitions to take the minimum over (3)
#   TRACE_OVERHEAD_TOL   allowed per-bench trace-off regression (0.02)
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

runs="${TRACE_OVERHEAD_RUNS:-3}"
for _ in $(seq "$runs"); do
    CRITERION_JSON="$raw" cargo bench --offline -p bench -- \
        "simulation_240_commits" >&2
done

python3 - "$raw" <<'EOF'
import json, os, sys

tol = float(os.environ.get("TRACE_OVERHEAD_TOL", "0.02"))

# Minimum over repetitions: the least-interfered-with measurement.
measured = {}
reps = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        rec = json.loads(line)
        ns = rec["ns_per_iter"]
        name = rec["name"]
        measured[name] = min(ns, measured.get(name, ns))
        reps.setdefault(name, []).append(ns)

# The machine's demonstrated noise floor: median over benches of the
# rep-to-rep spread within THIS run. On a quiet machine this is ~1%, and
# the effective bound stays near TRACE_OVERHEAD_TOL; on a noisy shared box
# the spread is visible in the data itself and the bound widens to match,
# so the gate flags real regressions without flaking on scheduler noise.
spreads = sorted(
    max(v) / min(v) - 1.0 for name, v in reps.items() if len(v) > 1
)
noise = spreads[len(spreads) // 2] if spreads else 0.0

baseline = json.load(open("BENCH_core.json"))["after"]

off = {
    name: measured[name] / baseline[name]
    for name in measured
    if name.startswith("simulation_240_commits/") and name in baseline
}
if not off:
    print("trace_overhead: no trace-off benches matched the baseline", file=sys.stderr)
    sys.exit(1)
ratios = sorted(off.values())
scale = ratios[len(ratios) // 2]
bound = tol + noise

failed = False
print(
    f"trace-off vs BENCH_core.json after "
    f"(machine scale {scale:.3f}, noise floor {noise:.1%}, bound {bound:.1%}):"
)
for name, r in sorted(off.items()):
    rel = r / scale - 1.0
    flag = ""
    if rel > bound:
        flag = f"  REGRESSION > {bound:.1%}"
        failed = True
    print(f"  {name:42s} {rel:+7.2%}{flag}")

print("trace-on overhead vs trace-off (this machine):")
base_2pl = measured.get("simulation_240_commits/2PL")
for name, ns in sorted(measured.items()):
    if name.startswith("simulation_240_commits_traced/") and base_2pl:
        print(f"  {name:42s} {ns / base_2pl - 1.0:+7.2%}")

if failed:
    print(f"FAIL: trace-off regression exceeds {bound:.1%}", file=sys.stderr)
    sys.exit(1)
print("OK: trace-off within tolerance")
EOF
