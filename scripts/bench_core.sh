#!/usr/bin/env bash
# Run the Criterion bench suites (components + figures) and print a
# per-bench `ns/iter` snapshot as a JSON object on stdout.
#
# BENCH_core.json at the repo root is produced from two such snapshots
# (a "before" and an "after" tree state); see EXPERIMENTS.md §Benchmarks.
#
# Usage:
#   scripts/bench_core.sh [bench-name-filter ...] > snapshot.json
#
# Criterion's human-readable progress goes to stderr; only JSON reaches
# stdout. Extra arguments are passed through as substring filters on bench
# names (e.g. `scripts/bench_core.sh simulation_240_commits`).
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

CRITERION_JSON="$raw" cargo bench --offline -p bench -- "$@" >&2

# Record where the numbers came from: medians are only comparable on the
# same core count / kernel / architecture, so a snapshot carries that
# context in `_meta` (no hostname — snapshots are committed).
cores=$(nproc)
host=$(uname -srm)

python3 - "$raw" "$cores" "$host" <<'EOF'
import json, sys
out = {"_meta": {"cores": int(sys.argv[2]), "host": sys.argv[3]}}
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        rec = json.loads(line)
        out[rec["name"]] = rec["ns_per_iter"]
print(json.dumps(out, indent=2, sort_keys=True))
EOF
