#!/usr/bin/env bash
# Whole-simulation perf gate.
#
# Runs the `simulation_240_commits` bench group N times, takes the
# per-bench minimum (the noise-robust estimator), and fails if ANY bench
# exceeds its committed baseline in BENCH_core.json's "after" snapshot by
# more than PERF_GATE_TOL (default 15%).
#
# Unlike scripts/trace_overhead.sh — which normalizes out machine speed to
# catch small *localized* regressions — this gate compares raw medians, so
# it also catches a uniform slowdown of the whole simulator (a pessimized
# hot path hits every algorithm equally and would survive normalization).
# The 15% bound is intentionally wide: it absorbs typical runner-to-runner
# drift while still catching the class of regression that matters
# (BENCH_core.json `_meta` records the baseline machine for comparison).
# Like scripts/trace_overhead.sh, the bound additionally widens by the
# machine's demonstrated same-run noise floor (the median rep-to-rep
# spread within this invocation), so a quiet CI runner is held close to
# 15% while a noisy shared box doesn't flake.
#
# Usage:
#   scripts/perf_gate.sh
#
# Environment:
#   PERF_GATE_RUNS  bench repetitions to take the minimum over (10)
#   PERF_GATE_TOL   allowed regression vs the committed baseline (0.15)
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

runs="${PERF_GATE_RUNS:-10}"
for _ in $(seq "$runs"); do
    CRITERION_JSON="$raw" cargo bench --offline -p bench -- \
        "simulation_240_commits/" >&2
done

python3 - "$raw" <<'EOF'
import json, os, sys

tol = float(os.environ.get("PERF_GATE_TOL", "0.15"))

measured = {}
reps = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        rec = json.loads(line)
        ns = rec["ns_per_iter"]
        measured[rec["name"]] = min(ns, measured.get(rec["name"], ns))
        reps.setdefault(rec["name"], []).append(ns)

# The machine's demonstrated noise floor: median over benches of the
# rep-to-rep spread within THIS run (same estimator as
# scripts/trace_overhead.sh).
spreads = sorted(max(v) / min(v) - 1.0 for v in reps.values() if len(v) > 1)
noise = spreads[len(spreads) // 2] if spreads else 0.0
tol += noise

baseline = json.load(open("BENCH_core.json"))["after"]
rows = {
    name: ns
    for name, ns in baseline.items()
    if name.startswith("simulation_240_commits/")
}
if not rows:
    print("perf_gate: no simulation_240_commits rows in BENCH_core.json", file=sys.stderr)
    sys.exit(1)

failed = False
print(f"whole-sim medians vs BENCH_core.json after (noise floor {noise:.1%}, bound +{tol:.0%}):")
for name, base in sorted(rows.items()):
    if name not in measured:
        print(f"  {name:42s} MISSING from this run", file=sys.stderr)
        failed = True
        continue
    rel = measured[name] / base - 1.0
    flag = ""
    if rel > tol:
        flag = f"  REGRESSION > {tol:.0%}"
        failed = True
    print(f"  {name:42s} {rel:+7.2%}{flag}")

if failed:
    print(f"FAIL: whole-sim median regresses more than {tol:.0%}", file=sys.stderr)
    sys.exit(1)
print("OK: all whole-sim medians within the gate")
EOF
