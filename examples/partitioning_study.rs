//! Partitioning study (paper §4.3): how does declustering a relation across
//! 1, 2, 4, or 8 nodes change response time for each concurrency control
//! algorithm, at a light and a heavy load?
//!
//! This is the experiment behind the paper's headline observation that
//! blocking-based algorithms exploit intra-transaction parallelism better
//! than abort-based ones: under load, 2PL gains the most from partitioning
//! and OPT the least.
//!
//! ```text
//! cargo run --release --example partitioning_study
//! ```

use ddbm::config::{Algorithm, Config};
use ddbm::core::run_config;

fn run_point(algo: Algorithm, degree: usize, think: f64) -> f64 {
    let mut config = Config::partitioning(algo, degree, false, think);
    config.control.warmup_commits = 200;
    config.control.measure_commits = 1_200;
    run_config(config).expect("valid config").mean_response_time
}

fn main() {
    let degrees = [1usize, 2, 4, 8];
    for think in [0.0, 8.0] {
        println!("\n=== mean think time {think} s (8 nodes, small database) ===\n");
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "algo", "1-way (s)", "2-way (s)", "4-way (s)", "8-way (s)", "speedup 8v1"
        );
        for algo in Algorithm::ALL {
            let rts: Vec<f64> = degrees.iter().map(|d| run_point(algo, *d, think)).collect();
            println!(
                "{:<6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>13.2}x",
                algo.label(),
                rts[0],
                rts[1],
                rts[2],
                rts[3],
                rts[0] / rts[3],
            );
        }
    }
    println!(
        "\nPaper's finding: at high load 2PL benefits the most from \
         parallelism (shorter lock-holding times), OPT the least (aborts \
         are its only weapon, and 8-way aborts are expensive)."
    );
}
