//! Quickstart: simulate the paper's 8-node database machine once per
//! concurrency control algorithm and print a comparison table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ddbm::config::{Algorithm, Config};
use ddbm::core::run_config;

fn main() {
    // The paper's Table 4 settings: 8 processing nodes, the database
    // declustered 8 ways, 300-page files (the high-contention database),
    // and a 4-second mean think time for a healthy load.
    let think_time = 4.0;
    println!("8-node machine, 8-way declustering, think time {think_time} s\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "algo", "txn/s", "resp (s)", "abort/commit", "disk util", "cpu util"
    );
    for algo in Algorithm::ALL {
        let mut config = Config::paper(algo, 8, 8, think_time);
        // Shorten the run so the example finishes in a few seconds.
        config.control.warmup_commits = 200;
        config.control.measure_commits = 1_000;
        let r = run_config(config).expect("valid configuration");
        println!(
            "{:<6} {:>10.2} {:>12.3} {:>12.3} {:>9.1}% {:>9.1}%",
            algo.label(),
            r.throughput,
            r.mean_response_time,
            r.abort_ratio,
            100.0 * r.disk_utilization,
            100.0 * r.proc_cpu_utilization,
        );
    }
    println!(
        "\nExpected under contention (paper §4): NO_DC on top, the blocking \
         pair (2PL, BTO) above the abort pair (WW, OPT); see EXPERIMENTS.md \
         D1 for the within-pair 2PL/BTO margin."
    );
}
