//! Machine-size scaling study (paper §4.2): grow the machine from 1 to 8
//! processing nodes, declustering the data across all of them, and measure
//! throughput and response-time speedups at several loads.
//!
//! Reproduces the striking mid-load result of Figure 5: the 8-node
//! response-time speedup far exceeds 8 at intermediate think times, because
//! the bigger machine gains both from extra capacity *and* from
//! intra-transaction parallelism in a region where queueing delays are
//! non-linear in utilization.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use ddbm::config::{Algorithm, Config};
use ddbm::core::{run_config, RunReport};

fn run_point(algo: Algorithm, nodes: usize, think: f64) -> RunReport {
    let mut config = Config::scaling(algo, nodes, think);
    config.control.warmup_commits = 200;
    config.control.measure_commits = 1_200;
    run_config(config).expect("valid config")
}

fn main() {
    let algo = Algorithm::TwoPhaseLocking;
    println!("2PL, small database, 128 terminals; speedups are 8-node vs 1-node\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "think (s)", "tps(1)", "tps(8)", "rt(1) s", "rt(8) s", "tput speedup", "resp speedup"
    );
    for think in [0.0, 2.0, 8.0, 16.0, 32.0, 64.0, 120.0] {
        let one = run_point(algo, 1, think);
        let eight = run_point(algo, 8, think);
        println!(
            "{:>9} {:>12.2} {:>12.2} {:>12.3} {:>12.3} {:>13.2}x {:>13.2}x",
            think,
            one.throughput,
            eight.throughput,
            one.mean_response_time,
            eight.mean_response_time,
            eight.throughput_speedup_over(&one),
            eight.response_speedup_over(&one),
        );
    }
    println!(
        "\nExpected shape (paper Figures 4–5): throughput speedup ≈ 8 under \
         heavy load falling toward 1 when idle; response-time speedup ≈ 6.5 \
         at the busy end, peaking far above 8 at intermediate loads, and \
         settling near 5.3 when idle (the longest-cohort limit, 64/12)."
    );
}
