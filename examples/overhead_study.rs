//! Overhead sensitivity study (paper §4.4): how expensive messages and
//! process startups erode the benefit of intra-transaction parallelism.
//!
//! With free messages and startups, more partitioning helps (especially the
//! blocking algorithms). With 4K-instruction messages, 8-way partitioning
//! can become *worse* than 4-way — distributed transactions are costly to
//! start and to restart after aborts.
//!
//! ```text
//! cargo run --release --example overhead_study
//! ```

use ddbm::config::{Algorithm, Config};
use ddbm::core::run_config;

fn response_time(algo: Algorithm, degree: usize, startup: u64, msg: u64, think: f64) -> f64 {
    let mut config = Config::overheads(algo, degree, startup, msg, think);
    config.control.warmup_commits = 200;
    config.control.measure_commits = 1_200;
    run_config(config).expect("valid config").mean_response_time
}

fn main() {
    let think = 8.0;
    let degrees = [1usize, 2, 4, 8];
    let settings: [(&str, u64, u64); 3] = [
        ("no overheads (startup=0, msg=0)", 0, 0),
        ("expensive messages (msg=4K)", 0, 4_000),
        ("heavyweight processes (startup=20K)", 20_000, 0),
    ];
    for (label, startup, msg) in settings {
        println!("\n=== {label}, think time {think} s ===\n");
        println!(
            "{:<6} {:>24} {:>12} {:>12} {:>12}",
            "algo", "speedup vs 1-way: 2-way", "4-way", "8-way", "best degree"
        );
        for algo in Algorithm::ALL {
            let rts: Vec<f64> = degrees
                .iter()
                .map(|d| response_time(algo, *d, startup, msg, think))
                .collect();
            let speedups: Vec<f64> = rts.iter().map(|rt| rts[0] / rt).collect();
            let best = degrees[speedups
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)];
            println!(
                "{:<6} {:>23.2}x {:>11.2}x {:>11.2}x {:>12}",
                algo.label(),
                speedups[1],
                speedups[2],
                speedups[3],
                best,
            );
        }
    }
    println!(
        "\nPaper's finding (Figures 16–17): with 4K-instruction messages \
         several algorithms — OPT above all — do worse at 8-way than at \
         4-way, and 20K-instruction startups have much the same effect."
    );
}
