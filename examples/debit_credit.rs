//! A Debit-Credit-flavoured workload on the simulated machine.
//!
//! The paper motivates shared-nothing database machines with banking-style
//! transaction processing (Non-Stop SQL's linear Debit Credit scaling;
//! §1). This example models a small-transaction OLTP workload — short
//! transactions touching a couple of pages in one or two partitions — and
//! shows inter-transaction parallelism scaling throughput with machine
//! size, Tandem-style, even without intra-transaction parallelism.
//!
//! ```text
//! cargo run --release --example debit_credit
//! ```

use ddbm::config::{Algorithm, Config, ExecPattern};
use ddbm::core::run_config;

/// A short-transaction workload: ~2 pages read per accessed partition, one
/// partition per relation group touched, high update fraction.
fn debit_credit_config(nodes: usize, think: f64) -> Config {
    let mut config = Config::scaling(Algorithm::TwoPhaseLocking, nodes, think);
    config.workload.mean_pages_per_file = 2;
    config.workload.min_pages_per_file = 1;
    config.workload.max_pages_per_file = 3;
    config.workload.write_prob = 0.9; // debits and credits update what they read
    config.workload.exec_pattern = ExecPattern::Sequential; // RPC-style, as in Non-Stop SQL
    config.database.pages_per_file = 1_200; // large bank: light data contention
    config.control.warmup_commits = 300;
    config.control.measure_commits = 2_000;
    config
}

fn main() {
    println!("Debit-Credit-style workload, sequential (RPC) execution, 2PL\n");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}",
        "nodes", "txn/s", "resp (ms)", "disk util", "scaleup"
    );
    let think = 1.0;
    let mut base_tps = None;
    for nodes in [1usize, 2, 4, 8] {
        let r = run_config(debit_credit_config(nodes, think)).expect("valid config");
        let base = *base_tps.get_or_insert(r.throughput);
        println!(
            "{:>6} {:>12.2} {:>14.1} {:>11.1}% {:>11.2}x",
            nodes,
            r.throughput,
            1_000.0 * r.mean_response_time,
            100.0 * r.disk_utilization,
            r.throughput / base,
        );
    }
    println!(
        "\nWith short transactions the 128 terminals saturate the small \
         machines; adding nodes raises throughput until the terminals, not \
         the machine, become the limit (cf. the Tandem Debit Credit \
         measurements cited in §1 of the paper)."
    );
}
