//! Tour of this reproduction's extensions beyond the paper:
//!
//! * **wait-die** (`WD`) — the other Rosenkrantz deadlock-prevention scheme;
//! * **timeout-based 2PL** (`2PL-T`) — deadlock resolution by lock-wait
//!   timeout, whose sensitivity the paper's footnote 2 alludes to;
//! * the **per-node LRU buffer pool** — the "modeling buffering in detail"
//!   future work of the paper's footnote 6.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use ddbm::config::{Algorithm, Config};
use ddbm::core::run_config;
use ddbm::sim::SimDuration;

fn shortened(mut config: Config) -> Config {
    config.control.warmup_commits = 200;
    config.control.measure_commits = 1_000;
    config
}

fn main() {
    let think = 1.0; // a contended operating point

    println!("=== Deadlock policy shoot-out (8 nodes, 8-way, think {think} s) ===\n");
    println!(
        "{:<6} {:>10} {:>12} {:>14}",
        "algo", "txn/s", "resp (s)", "aborts/commit"
    );
    for algo in [
        Algorithm::TwoPhaseLocking,
        Algorithm::TwoPhaseLockingTimeout,
        Algorithm::WoundWait,
        Algorithm::WaitDie,
    ] {
        let r = run_config(shortened(Config::paper(algo, 8, 8, think))).expect("valid");
        println!(
            "{:<6} {:>10.2} {:>12.3} {:>14.3}",
            algo.label(),
            r.throughput,
            r.mean_response_time,
            r.abort_ratio
        );
    }

    println!("\n=== 2PL-T timeout sensitivity ===\n");
    println!(
        "{:>12} {:>10} {:>14}",
        "timeout (s)", "txn/s", "aborts/commit"
    );
    for timeout in [0.25, 1.0, 5.0, 20.0] {
        let mut config = Config::paper(Algorithm::TwoPhaseLockingTimeout, 8, 8, think);
        config.system.lock_timeout = SimDuration::from_secs_f64(timeout);
        let r = run_config(shortened(config)).expect("valid");
        println!(
            "{:>12} {:>10.2} {:>14.3}",
            timeout, r.throughput, r.abort_ratio
        );
    }

    println!("\n=== Buffer pool (footnote 6's future work) ===\n");
    println!(
        "{:>14} {:>10} {:>11} {:>11}",
        "buffer (pages)", "txn/s", "hit ratio", "disk util"
    );
    for pages in [0u64, 300, 1_200, 2_400] {
        let mut config = Config::paper(Algorithm::TwoPhaseLocking, 8, 8, think);
        config.system.buffer_pages = pages;
        // Longer warmup so the pool is warm before measuring.
        config.control.warmup_commits = 1_000;
        config.control.measure_commits = 1_500;
        let r = run_config(config).expect("valid");
        println!(
            "{:>14} {:>10.2} {:>10.1}% {:>10.1}%",
            pages,
            r.throughput,
            100.0 * r.buffer_hit_ratio,
            100.0 * r.disk_utilization
        );
    }
    println!(
        "\nThe ordering of the paper's algorithms is unchanged by buffering \
         (run `repro e22` for the full sweep), supporting the paper's \
         footnote-6 conjecture."
    );
}
